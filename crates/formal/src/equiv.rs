//! Equivalence checking: miter construction, sweeping, SAT, verdicts.
//!
//! Both designs are blasted into **one** AIG with the *same* fresh input
//! literals driving their free inputs, so structurally identical logic
//! hash-conses across the two designs and the per-output difference
//! literals frequently fold to constant false without any search. What
//! survives is attacked in escalating stages:
//!
//! 1. constant folding (already done inside the AIG),
//! 2. bit-parallel random simulation — 64 stimulus vectors per round
//!    fishing for a cheap counterexample,
//! 3. the CDCL core on a cone-scoped Tseitin encoding of the disjunction
//!    of all surviving difference literals.
//!
//! Sequential designs are checked by bounded unrolling: a constant reset
//! preamble (supplied by the caller, derived from the spec's reset
//! protocol) followed by `seq_steps` clock cycles with fresh symbolic
//! data inputs each cycle. Edge-watched inputs other than the clock hold
//! their final preamble value — a documented restriction, since a
//! symbolic edge decision cannot be scheduled.
//!
//! Verdict semantics (the soundness contract the property suite checks):
//!
//! * `Equivalent` is only reported when every difference literal is
//!   unsatisfiable **and** every compared output bit's taint literal is
//!   unsatisfiable too (taint is symbolic — see the bitblast module —
//!   so "the uninitialized register is overwritten on every path" is a
//!   provable fact, not an automatic `Unknown`);
//! * `Counterexample` carries a concrete stimulus, and callers are
//!   expected to replay it on the scalar simulator before trusting it;
//! * everything else — taint, budget exhaustion, unsupported constructs,
//!   interface mismatches — is `Unknown`, never a silent pass.

use std::collections::BTreeMap;

use haven_verilog::compile::CompiledDesign;
use haven_verilog::elab::Trigger;
use haven_verilog::exec::CompiledSim;
use haven_verilog::logic::LogicVec;

use crate::aig::{Aig, Lit};
use crate::bitblast::Blaster;
use crate::cnf::encode;
use crate::sat::{SatResult, SatStats};

/// One constant stimulus operation of the reset preamble.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PreambleOp {
    /// Drive an input to a constant.
    Set(String, u64),
    /// One full clock cycle.
    Tick,
}

/// Tuning knobs for one equivalence query.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EquivOptions {
    /// Clock cycles of bounded unrolling for sequential designs.
    pub seq_steps: usize,
    /// SAT conflict budget; exhausted budgets yield `Unknown`.
    pub sat_conflicts: u64,
    /// Rounds of 64-pattern random simulation before SAT.
    pub sim_rounds: usize,
    /// Clock input name; required when either design is sequential.
    pub clock: Option<String>,
    /// Constant reset protocol applied before the free steps.
    pub preamble: Vec<PreambleOp>,
    /// Constant probe applied *after* the free steps, with outputs
    /// compared after every operation. This is how edge-watched inputs
    /// (held constant during the free steps) still get exercised: a
    /// `Set(reset, asserted)` here distinguishes async from sync reset
    /// styles, because the comparison right after the poke happens
    /// before any clock edge.
    pub postamble: Vec<PreambleOp>,
    /// Seed for the counterexample-fishing simulation.
    pub seed: u64,
}

impl Default for EquivOptions {
    fn default() -> EquivOptions {
        EquivOptions {
            seq_steps: 6,
            sat_conflicts: 200_000,
            sim_rounds: 8,
            clock: None,
            preamble: Vec::new(),
            postamble: Vec::new(),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Why a query could not be decided.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum UnknownReason {
    /// The two designs do not expose the same ports.
    InterfaceMismatch(String),
    /// A construct the bitblaster cannot lower soundly.
    Unsupported(String),
    /// Output bits tainted by the two-valued x-abstraction; listed
    /// outputs carry taint, so "no difference found" proves nothing.
    XAbstraction(String),
    /// The SAT core exhausted its conflict budget.
    SatBudget,
    /// A counterexample failed scalar replay (reported by callers that
    /// confirm; never produced by [`check_equiv`] itself).
    ReplayUnconfirmed,
}

impl std::fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnknownReason::InterfaceMismatch(d) => write!(f, "interface mismatch: {d}"),
            UnknownReason::Unsupported(d) => write!(f, "unsupported: {d}"),
            UnknownReason::XAbstraction(d) => write!(f, "x-abstraction taint on {d}"),
            UnknownReason::SatBudget => write!(f, "SAT conflict budget exhausted"),
            UnknownReason::ReplayUnconfirmed => write!(f, "counterexample failed replay"),
        }
    }
}

/// One unrolled step of a counterexample: the constants to drive.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CexStep {
    /// `(input, value)` pokes, in poke order.
    pub sets: Vec<(String, u64)>,
}

/// A concrete distinguishing stimulus.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CexTrace {
    /// Reset protocol to replay first.
    pub preamble: Vec<PreambleOp>,
    /// Free steps; sequential traces tick after each step's pokes.
    pub steps: Vec<CexStep>,
    /// Constant probe replayed after the free steps, outputs checked
    /// after every operation.
    pub postamble: Vec<PreambleOp>,
    /// Step index where the first mismatch appears: an index into
    /// `steps`, or `steps.len() + i` for the check after `postamble[i]`.
    pub mismatch_step: usize,
    /// Output port that differs there.
    pub mismatch_output: String,
}

/// The three-valued outcome of an equivalence query.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EquivVerdict {
    /// Outputs agree for **all** input assignments (within the unroll
    /// bound for sequential designs).
    Equivalent,
    /// A concrete stimulus distinguishing the designs.
    Counterexample(CexTrace),
    /// Not decided; the reason says why.
    Unknown(UnknownReason),
}

impl EquivVerdict {
    /// Whether this verdict proves equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivVerdict::Equivalent)
    }
}

/// Outcome plus the cost counters the bench and telemetry layers emit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EquivReport {
    /// The verdict.
    pub verdict: EquivVerdict,
    /// Total AIG nodes after blasting both designs.
    pub aig_nodes: usize,
    /// Free symbolic input bits.
    pub aig_inputs: usize,
    /// Whether the verdict was reached without running SAT.
    pub structural: bool,
    /// Random-simulation rounds actually run.
    pub sim_rounds_run: usize,
    /// SAT core counters (zeroed when SAT never ran).
    pub sat_stats: SatStats,
}

impl EquivReport {
    fn undecided(reason: UnknownReason) -> EquivReport {
        EquivReport {
            verdict: EquivVerdict::Unknown(reason),
            aig_nodes: 0,
            aig_inputs: 0,
            structural: true,
            sim_rounds_run: 0,
            sat_stats: SatStats::default(),
        }
    }
}

/// One per-(step, output) proof obligation.
struct Obligation {
    step: usize,
    output: String,
    /// OR over bits of `golden XOR candidate`, each conjoined with
    /// "neither side tainted here" — a satisfying assignment is always
    /// a genuine two-valued mismatch.
    diff: Lit,
    /// OR over bits of "either side tainted here". `Equivalent` needs
    /// this unsatisfiable as well as `diff`.
    taint: Lit,
}

/// A free symbolic input poked at one step.
struct SymInput {
    step: usize,
    name: String,
    lits: Vec<Lit>,
}

fn is_sequential(cd: &CompiledDesign) -> bool {
    cd.design()
        .processes
        .iter()
        .any(|p| matches!(p.trigger, Trigger::Edge(_)))
}

/// Checks `candidate ≡ golden` and reports the verdict with cost
/// counters. Never panics on malformed candidates — every failure mode
/// maps to `Unknown`.
pub fn check_equiv(
    golden: &CompiledDesign,
    candidate: &CompiledDesign,
    opts: &EquivOptions,
) -> EquivReport {
    // Interface: same input and output port sets (name and width).
    let ports = |cd: &CompiledDesign| -> (BTreeMap<String, usize>, BTreeMap<String, usize>) {
        (
            cd.design().input_ports().into_iter().collect(),
            cd.design().output_ports().into_iter().collect(),
        )
    };
    let (gi, go) = ports(golden);
    let (ci, co) = ports(candidate);
    if gi != ci || go != co {
        return EquivReport::undecided(UnknownReason::InterfaceMismatch(format!(
            "golden {}in/{}out vs candidate {}in/{}out",
            gi.len(),
            go.len(),
            ci.len(),
            co.len()
        )));
    }

    let sequential = is_sequential(golden) || is_sequential(candidate);
    let clock = match (&opts.clock, sequential) {
        (Some(c), true) => Some(c.clone()),
        (None, true) => {
            return EquivReport::undecided(UnknownReason::Unsupported(
                "sequential design without a configured clock".into(),
            ))
        }
        (_, false) => None,
    };
    if let Some(c) = &clock {
        if !gi.contains_key(c) {
            return EquivReport::undecided(UnknownReason::Unsupported(format!(
                "clock `{c}` is not an input port"
            )));
        }
    }

    let mut g = Aig::new();
    let mut bg = match Blaster::new(&mut g, golden) {
        Ok(b) => b,
        Err(e) => return EquivReport::undecided(UnknownReason::Unsupported(e.reason)),
    };
    let mut bc = match Blaster::new(&mut g, candidate) {
        Ok(b) => b,
        Err(e) => return EquivReport::undecided(UnknownReason::Unsupported(e.reason)),
    };

    let sig_of = |cd: &CompiledDesign, name: &str| cd.design().signal(name).map(|s| s.0);

    // Reset preamble: constant pokes mirrored into both designs.
    for op in &opts.preamble {
        let r = match op {
            PreambleOp::Set(name, v) => {
                let (Some(sg), Some(sc)) = (sig_of(golden, name), sig_of(candidate, name)) else {
                    return EquivReport::undecided(UnknownReason::Unsupported(format!(
                        "preamble drives unknown input `{name}`"
                    )));
                };
                bg.poke_const(&mut g, sg, *v)
                    .and_then(|()| bc.poke_const(&mut g, sc, *v))
            }
            PreambleOp::Tick => {
                let c = clock.as_deref().unwrap_or_default();
                let (Some(sg), Some(sc)) = (sig_of(golden, c), sig_of(candidate, c)) else {
                    return EquivReport::undecided(UnknownReason::Unsupported(
                        "preamble tick without a clock".into(),
                    ));
                };
                bg.tick(&mut g, sg).and_then(|()| bc.tick(&mut g, sc))
            }
        };
        if let Err(e) = r {
            return EquivReport::undecided(UnknownReason::Unsupported(e.reason));
        }
    }

    // Free inputs: every input except the clock and edge-watched signals
    // (those hold their final preamble constant). Edge-watched status can
    // differ between designs; an input is held if *either* side watches
    // it, so both sides always see identical stimuli.
    let mut free_inputs: Vec<String> = Vec::new();
    for name in gi.keys() {
        if Some(name) == clock.as_ref() {
            continue;
        }
        let watched = |cd: &CompiledDesign| {
            sig_of(cd, name).is_some_and(|s| !cd.edge_woken()[s as usize].is_empty())
        };
        if watched(golden) || watched(candidate) {
            continue;
        }
        free_inputs.push(name.clone());
    }

    let steps = if sequential { opts.seq_steps.max(1) } else { 1 };
    let mut sym_inputs: Vec<SymInput> = Vec::new();
    let mut obligations: Vec<Obligation> = Vec::new();

    for step in 0..steps {
        for name in &free_inputs {
            let width = gi[name];
            let lits: Vec<Lit> = (0..width).map(|_| g.input()).collect();
            let (Some(sg), Some(sc)) = (sig_of(golden, name), sig_of(candidate, name)) else {
                return EquivReport::undecided(UnknownReason::Unsupported(format!(
                    "input `{name}` not found"
                )));
            };
            let r = bg
                .poke_sym(&mut g, sg, lits.clone())
                .and_then(|()| bc.poke_sym(&mut g, sc, lits.clone()));
            if let Err(e) = r {
                return EquivReport::undecided(UnknownReason::Unsupported(e.reason));
            }
            sym_inputs.push(SymInput {
                step,
                name: name.clone(),
                lits,
            });
        }
        if sequential {
            let c = clock.as_deref().unwrap_or_default();
            let (Some(sg), Some(sc)) = (sig_of(golden, c), sig_of(candidate, c)) else {
                return EquivReport::undecided(UnknownReason::Unsupported(
                    "clock not found".into(),
                ));
            };
            let r = bg.tick(&mut g, sg).and_then(|()| bc.tick(&mut g, sc));
            if let Err(e) = r {
                return EquivReport::undecided(UnknownReason::Unsupported(e.reason));
            }
        }
        if let Err(r) = observe_outputs(&mut g, &bg, &bc, golden, candidate, &go, step, &mut obligations) {
            return r;
        }
    }

    // Postamble probe: constant pokes after the free steps, outputs
    // compared after every operation. This is the only way edge-watched
    // inputs (held constant above) get exercised, and the only bounded
    // query that separates async from sync reset styles.
    for (i, op) in opts.postamble.iter().enumerate() {
        let r = match op {
            PreambleOp::Set(name, v) => {
                let (Some(sg), Some(sc)) = (sig_of(golden, name), sig_of(candidate, name)) else {
                    return EquivReport::undecided(UnknownReason::Unsupported(format!(
                        "postamble drives unknown input `{name}`"
                    )));
                };
                bg.poke_const(&mut g, sg, *v)
                    .and_then(|()| bc.poke_const(&mut g, sc, *v))
            }
            PreambleOp::Tick => {
                let c = clock.as_deref().unwrap_or_default();
                let (Some(sg), Some(sc)) = (sig_of(golden, c), sig_of(candidate, c)) else {
                    return EquivReport::undecided(UnknownReason::Unsupported(
                        "postamble tick without a clock".into(),
                    ));
                };
                bg.tick(&mut g, sg).and_then(|()| bc.tick(&mut g, sc))
            }
        };
        if let Err(e) = r {
            return EquivReport::undecided(UnknownReason::Unsupported(e.reason));
        }
        if let Err(r) =
            observe_outputs(&mut g, &bg, &bc, golden, candidate, &go, steps + i, &mut obligations)
        {
            return r;
        }
    }

    decide(g, opts, sym_inputs, obligations, steps)
}

/// Records one per-output proof obligation at `step`: the OR over bit
/// pairs of `golden XOR candidate` masked by "both sides known", plus
/// the OR of the per-bit taint literals.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::result_large_err)] // Err is the final report; built once on a cold path
fn observe_outputs(
    g: &mut Aig,
    bg: &Blaster<'_>,
    bc: &Blaster<'_>,
    golden: &CompiledDesign,
    candidate: &CompiledDesign,
    go: &BTreeMap<String, usize>,
    step: usize,
    obligations: &mut Vec<Obligation>,
) -> Result<(), EquivReport> {
    let sig_of = |cd: &CompiledDesign, name: &str| cd.design().signal(name).map(|s| s.0);
    for (name, &width) in go {
        let (Some(sg), Some(sc)) = (sig_of(golden, name), sig_of(candidate, name)) else {
            return Err(EquivReport::undecided(UnknownReason::Unsupported(format!(
                "output `{name}` not found"
            ))));
        };
        let gv = bg.value(sg).clone();
        let cv = bc.value(sc).clone();
        let mut diff = Lit::FALSE;
        let mut taint = Lit::FALSE;
        for i in 0..width {
            let (gb, gx) = (gv.bits[i], gv.x[i]);
            let (cb, cx) = (cv.bits[i], cv.x[i]);
            let bit_taint = g.or(gx, cx);
            taint = g.or(taint, bit_taint);
            let d = g.xor(gb, cb);
            let defined = g.and(d, bit_taint.not());
            diff = g.or(diff, defined);
        }
        obligations.push(Obligation {
            step,
            output: name.clone(),
            diff,
            taint,
        });
    }
    Ok(())
}

/// Stages 2–3 of the pipeline: fold, fish, then SAT.
fn decide(
    g: Aig,
    opts: &EquivOptions,
    sym_inputs: Vec<SymInput>,
    obligations: Vec<Obligation>,
    nsteps: usize,
) -> EquivReport {
    let mut report = EquivReport {
        verdict: EquivVerdict::Equivalent,
        aig_nodes: g.len(),
        aig_inputs: g.input_count(),
        structural: true,
        sim_rounds_run: 0,
        sat_stats: SatStats::default(),
    };
    // Constant-true difference: the designs differ under *every*
    // assignment; all-zero inputs are as good a witness as any.
    if let Some(o) = obligations.iter().find(|o| o.diff == Lit::TRUE) {
        let zeros = vec![0u64; g.input_count()];
        report.verdict = EquivVerdict::Counterexample(build_trace(
            &g,
            opts,
            &sym_inputs,
            &obligations,
            &zeros,
            0,
            (o.step, &o.output),
            nsteps,
        ));
        return report;
    }

    let live: Vec<&Obligation> = obligations
        .iter()
        .filter(|o| o.diff != Lit::FALSE)
        .collect();
    if live.is_empty() {
        resolve_taint(&g, opts, &obligations, &mut report);
        return report;
    }
    report.structural = false;

    // Stage 2: random bit-parallel simulation, 64 vectors a round.
    let mut rng = opts.seed | 1;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..opts.sim_rounds {
        report.sim_rounds_run += 1;
        let words: Vec<u64> = (0..g.input_count()).map(|_| next()).collect();
        let vals = g.sim64(&words);
        if let Some((o, lane)) = live.iter().find_map(|o| {
            let w = Aig::read64(&vals, o.diff);
            (w != 0).then(|| (*o, w.trailing_zeros() as usize))
        }) {
            report.verdict = EquivVerdict::Counterexample(build_trace(
                &g,
                opts,
                &sym_inputs,
                &obligations,
                &words,
                lane,
                (o.step, &o.output),
                nsteps,
            ));
            return report;
        }
    }

    // Stage 3: SAT on the disjunction of surviving differences.
    let roots: Vec<Lit> = live.iter().map(|o| o.diff).collect();
    let (mut solver, map) = encode(&g, &roots);
    let outcome = solver.solve(opts.sat_conflicts);
    report.sat_stats = *solver.stats();
    match outcome {
        SatResult::Unsat => {
            // No two-valued mismatch exists; equivalence now hinges on
            // whether any compared bit's taint can actually materialize.
            resolve_taint(&g, opts, &obligations, &mut report);
        }
        SatResult::Unknown => {
            report.verdict = EquivVerdict::Unknown(UnknownReason::SatBudget);
        }
        SatResult::Sat => {
            // Decode the model into one 64-wide lane, then locate the
            // first obligation the assignment actually triggers.
            let mut words = vec![0u64; g.input_count()];
            for (pos, word) in words.iter_mut().enumerate() {
                let lit = g.input_lit(pos);
                let v = map
                    .lit(lit)
                    .map(|dv| solver.value(dv.abs()) == (dv > 0))
                    .unwrap_or(false);
                *word = if v { 1 } else { 0 };
            }
            let vals = g.sim64(&words);
            let hit = obligations
                .iter()
                .find(|o| Aig::read64(&vals, o.diff) & 1 == 1);
            match hit {
                Some(o) => {
                    report.verdict = EquivVerdict::Counterexample(build_trace(
                        &g,
                        opts,
                        &sym_inputs,
                        &obligations,
                        &words,
                        0,
                        (o.step, &o.output),
                        nsteps,
                    ));
                }
                None => {
                    // A model that triggers nothing would be a solver
                    // bug; refuse to guess rather than report wrongly.
                    report.verdict =
                        EquivVerdict::Unknown(UnknownReason::Unsupported(
                            "SAT model triggers no obligation".into(),
                        ));
                }
            }
        }
    }
    report
}

/// Settles the taint side of the proof once no two-valued mismatch
/// exists: `Equivalent` requires every obligation's taint literal to be
/// unsatisfiable. Constant taints decide structurally; conditional
/// taints (an uninitialized register behind a guard chain) go to the
/// SAT core, which proves either that every path overwrites the X
/// (taint UNSAT → `Equivalent`) or that some reachable input leaves it
/// live (taint SAT → `Unknown`, because the executor's value there is
/// outside the two-valued abstraction).
fn resolve_taint(g: &Aig, opts: &EquivOptions, obligations: &[Obligation], report: &mut EquivReport) {
    let possibly: Vec<&Obligation> = obligations
        .iter()
        .filter(|o| o.taint != Lit::FALSE)
        .collect();
    if possibly.is_empty() {
        report.verdict = EquivVerdict::Equivalent;
        return;
    }
    let reason = || {
        let mut names: Vec<&str> = possibly.iter().map(|o| o.output.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        UnknownReason::XAbstraction(names.join(","))
    };
    if possibly.iter().any(|o| o.taint == Lit::TRUE) {
        report.verdict = EquivVerdict::Unknown(reason());
        return;
    }
    report.structural = false;
    let roots: Vec<Lit> = possibly.iter().map(|o| o.taint).collect();
    let (mut solver, _map) = encode(g, &roots);
    let outcome = solver.solve(opts.sat_conflicts);
    let s = solver.stats();
    report.sat_stats.decisions += s.decisions;
    report.sat_stats.conflicts += s.conflicts;
    report.sat_stats.propagations += s.propagations;
    report.sat_stats.restarts += s.restarts;
    report.sat_stats.learned += s.learned;
    report.verdict = match outcome {
        SatResult::Unsat => EquivVerdict::Equivalent,
        SatResult::Sat => EquivVerdict::Unknown(reason()),
        SatResult::Unknown => EquivVerdict::Unknown(UnknownReason::SatBudget),
    };
}

/// Materializes a counterexample trace from one simulation lane.
#[allow(clippy::too_many_arguments)]
fn build_trace(
    g: &Aig,
    opts: &EquivOptions,
    sym_inputs: &[SymInput],
    obligations: &[Obligation],
    words: &[u64],
    lane: usize,
    fallback_mismatch: (usize, &str),
    nsteps: usize,
) -> CexTrace {
    let mut steps: Vec<CexStep> = (0..nsteps).map(|_| CexStep { sets: Vec::new() }).collect();
    for si in sym_inputs {
        let mut value = 0u64;
        for (bit, &lit) in si.lits.iter().enumerate() {
            let pos = g.input_index(lit).expect("symbolic input literal");
            if words.get(pos).copied().unwrap_or(0) >> lane & 1 == 1 && bit < 64 {
                value |= 1 << bit;
            }
        }
        steps[si.step].sets.push((si.name.clone(), value));
    }
    // Re-simulate the lane to pin the earliest triggered mismatch.
    let vals = g.sim64(words);
    let (mismatch_step, mismatch_output) = obligations
        .iter()
        .filter(|o| Aig::read64(&vals, o.diff) >> lane & 1 == 1)
        .map(|o| (o.step, o.output.clone()))
        .next()
        .unwrap_or((fallback_mismatch.0, fallback_mismatch.1.to_string()));
    CexTrace {
        preamble: opts.preamble.clone(),
        steps,
        postamble: opts.postamble.clone(),
        mismatch_step,
        mismatch_output,
    }
}

/// A hard scalar mismatch found during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// Step index where the outputs first diverge.
    pub step: usize,
    /// Output port name.
    pub output: String,
    /// Golden value at the mismatch.
    pub golden: LogicVec,
    /// Candidate value at the mismatch.
    pub candidate: LogicVec,
}

/// Whether two four-state values disagree on some bit both sides know.
/// This is the only mismatch a sound counterexample may claim: taint
/// never reaches a compared diff literal, so the predicted bit must be
/// known (and different) on both sides.
pub fn hard_mismatch(a: &LogicVec, b: &LogicVec) -> bool {
    let w = a.width().max(b.width());
    let a = a.resized(w);
    let b = b.resized(w);
    (0..w).any(|i| {
        let (x, y) = (a.bit(i), b.bit(i));
        x.is_known() && y.is_known() && x != y
    })
}

/// Replays a counterexample on two scalar simulators and returns the
/// first hard mismatch, if the trace really distinguishes the designs.
///
/// Any simulator error (budget, oscillation) yields `None` — an
/// unconfirmed counterexample, which callers must degrade to `Unknown`.
pub fn replay_cex(
    golden: &std::sync::Arc<CompiledDesign>,
    candidate: &std::sync::Arc<CompiledDesign>,
    trace: &CexTrace,
    clock: Option<&str>,
) -> Option<ReplayMismatch> {
    let mut sg = CompiledSim::new(std::sync::Arc::clone(golden)).ok()?;
    let mut sc = CompiledSim::new(std::sync::Arc::clone(candidate)).ok()?;
    for op in &trace.preamble {
        match op {
            PreambleOp::Set(name, v) => {
                sg.poke_u64(name, *v).ok()?;
                sc.poke_u64(name, *v).ok()?;
            }
            PreambleOp::Tick => {
                let c = clock?;
                sg.tick(c).ok()?;
                sc.tick(c).ok()?;
            }
        }
    }
    let outputs: Vec<String> = golden
        .design()
        .output_ports()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    for (step, s) in trace.steps.iter().enumerate() {
        for (name, v) in &s.sets {
            sg.poke_u64(name, *v).ok()?;
            sc.poke_u64(name, *v).ok()?;
        }
        if let Some(c) = clock {
            sg.tick(c).ok()?;
            sc.tick(c).ok()?;
        }
        for name in &outputs {
            let gv = sg.peek(name).ok()?;
            let cv = sc.peek(name).ok()?;
            if hard_mismatch(&gv, &cv) {
                return Some(ReplayMismatch {
                    step,
                    output: name.clone(),
                    golden: gv,
                    candidate: cv,
                });
            }
        }
    }
    for (i, op) in trace.postamble.iter().enumerate() {
        match op {
            PreambleOp::Set(name, v) => {
                sg.poke_u64(name, *v).ok()?;
                sc.poke_u64(name, *v).ok()?;
            }
            PreambleOp::Tick => {
                let c = clock?;
                sg.tick(c).ok()?;
                sc.tick(c).ok()?;
            }
        }
        let step = trace.steps.len() + i;
        for name in &outputs {
            let gv = sg.peek(name).ok()?;
            let cv = sc.peek(name).ok()?;
            if hard_mismatch(&gv, &cv) {
                return Some(ReplayMismatch {
                    step,
                    output: name.clone(),
                    golden: gv,
                    candidate: cv,
                });
            }
        }
    }
    None
}
