//! Tseitin encoding: AIG cones → CNF for the SAT core.
//!
//! Only the cone of influence of the requested roots is encoded — the
//! shared miter AIG holds both designs across every unrolled step, but a
//! query about one obligation pays only for the nodes it can reach.
//! Each AND node `v = a ∧ b` contributes the three standard clauses
//! `(¬v ∨ a)`, `(¬v ∨ b)`, `(v ∨ ¬a ∨ ¬b)`; inputs get a free variable.

use std::collections::{HashMap, HashSet};

use crate::aig::{Aig, Lit};
use crate::sat::Solver;

/// The variable map produced by an encoding: AIG node id → DIMACS var.
pub struct CnfMap {
    vars: HashMap<u32, i32>,
}

impl CnfMap {
    /// The DIMACS variable of `node`, if it is inside the encoded cone.
    pub fn var(&self, node: u32) -> Option<i32> {
        self.vars.get(&node).copied()
    }

    /// The DIMACS literal of an AIG literal inside the cone.
    pub fn lit(&self, l: Lit) -> Option<i32> {
        self.var(l.node()).map(|v| if l.negated() { -v } else { v })
    }

    /// Number of encoded variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the cone was empty (all roots constant).
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// Topological order of the cone of `roots` (fanins before fanouts),
/// constants excluded.
fn cone(aig: &Aig, roots: &[Lit]) -> Vec<u32> {
    let mut order: Vec<u32> = Vec::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut stack: Vec<(u32, bool)> = roots
        .iter()
        .filter(|l| !l.is_const())
        .map(|l| (l.node(), false))
        .collect();
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            order.push(node);
            continue;
        }
        if !visited.insert(node) {
            continue;
        }
        stack.push((node, true));
        if let Some((a, b)) = aig.and_fanin(node) {
            debug_assert!(
                !a.is_const() && !b.is_const(),
                "const-prop left no constant fanins"
            );
            stack.push((a.node(), false));
            stack.push((b.node(), false));
        }
    }
    order
}

/// Builds a solver holding the Tseitin encoding of `roots`' cone with the
/// disjunction of the roots asserted true (the standard miter query:
/// "some root can be 1"). Constant-false roots drop out of the
/// disjunction; callers must fold constant-true roots before encoding.
pub fn encode(aig: &Aig, roots: &[Lit]) -> (Solver, CnfMap) {
    debug_assert!(
        roots.iter().all(|r| *r != Lit::TRUE),
        "constant-true roots are decided without SAT"
    );
    let order = cone(aig, roots);
    let vars: HashMap<u32, i32> = order
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as i32 + 1))
        .collect();
    let map = CnfMap { vars };
    let mut solver = Solver::new(order.len());
    for node in &order {
        if let Some((a, b)) = aig.and_fanin(*node) {
            let v = map.var(*node).expect("cone node has a var");
            let la = map.lit(a).expect("fanin inside cone");
            let lb = map.lit(b).expect("fanin inside cone");
            solver.add_clause(&[-v, la]);
            solver.add_clause(&[-v, lb]);
            solver.add_clause(&[v, -la, -lb]);
        }
    }
    let assertion: Vec<i32> = roots.iter().filter_map(|&r| map.lit(r)).collect();
    solver.add_clause(&assertion);
    (solver, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    #[test]
    fn inverter_chain_miter_is_unsat() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let f = g.and(a, b.not());
        // ¬(¬a ∨ b) is the same function built a different way; strash
        // folds it back to `f`, so perturb with a double negation through
        // a mux to get a structurally distinct but equivalent cone.
        let h = g.mux(a, b.not(), Lit::FALSE);
        let miter = g.xor(f, h);
        if miter == Lit::FALSE {
            return; // folded structurally — nothing left to solve
        }
        let (mut s, _) = encode(&g, &[miter]);
        assert_eq!(s.solve(10_000), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_miter_yields_a_real_witness() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let f = g.and(a, b);
        let h = g.or(a, b);
        let miter = g.xor(f, h);
        let (mut s, map) = encode(&g, &[miter]);
        assert_eq!(s.solve(10_000), SatResult::Sat);
        // Decode the model back to AIG inputs and re-simulate.
        let read = |l: Lit, s: &Solver| {
            map.lit(l).map(|v| s.value(v.abs()) == (v > 0)).unwrap_or(false)
        };
        let av = read(a, &s);
        let bv = read(b, &s);
        assert!(g.eval(&[av, bv], miter), "model must drive the miter to 1");
        assert_ne!(av && bv, av || bv);
    }

    #[test]
    fn cone_is_scoped_to_the_roots() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let small = g.and(a, b);
        let _big = g.and(small, c);
        let order = cone(&g, &[small]);
        assert_eq!(order.len(), 3, "a, b and the AND — never c or big");
    }
}
