//! And-Inverter Graph with structural hashing and constant propagation.
//!
//! The AIG is the shared normal form of the formal oracle: the bitblaster
//! lowers both sides of an equivalence query into **one** graph, so
//! identical subcircuits of the golden and candidate designs hash-cons to
//! the same node and the miter often collapses to constant false before
//! the SAT core ever runs. Nodes are append-only; a [`Lit`] is a node
//! index with a complement bit in its LSB, so negation is free.
//!
//! Two cheap semantic engines run directly on the graph:
//!
//! * constant propagation happens *inside* [`Aig::and`] (two-level rules:
//!   identical/complementary operands, constant absorption), so constant
//!   miters never materialize nodes at all;
//! * [`Aig::sim64`] evaluates all nodes under 64 input patterns at once
//!   (the same bit-parallel trick as the batched simulator), which the
//!   equivalence checker uses to fish for counterexample candidates
//!   before paying for CNF.

use std::collections::HashMap;

/// A literal: an AIG node index with a complement flag in bit 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Constant false (the complement-free literal of node 0).
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// The node this literal refers to.
    #[inline]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal complements its node.
    #[inline]
    pub fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Logical negation (free: flips the complement bit).
    #[inline]
    #[allow(clippy::should_implement_trait)] // by-value helper, chains better than `!lit`
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Whether this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The constant value, if this is a constant literal.
    #[inline]
    pub fn const_value(self) -> Option<bool> {
        if self.is_const() {
            Some(self.negated())
        } else {
            None
        }
    }

    fn of_node(node: u32) -> Lit {
        Lit(node << 1)
    }
}

/// One AIG node: either a primary input or a two-input AND gate.
#[derive(Debug, Clone, Copy)]
enum Node {
    /// Constant-false node (index 0 only).
    Const,
    /// Primary input; the payload is its position in input order.
    Input(u32),
    /// AND of two literals.
    And(Lit, Lit),
}

/// An And-Inverter Graph.
///
/// # Examples
///
/// ```
/// use haven_formal::aig::{Aig, Lit};
/// let mut g = Aig::new();
/// let a = g.input();
/// let b = g.input();
/// let y1 = g.and(a, b);
/// let y2 = g.and(b, a);
/// assert_eq!(y1, y2, "structural hashing canonicalizes operand order");
/// assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    /// Node ids of primary inputs, in creation order.
    inputs: Vec<u32>,
    /// Structural hash: (lhs, rhs) of an existing AND → its node id.
    strash: HashMap<(u32, u32), u32>,
}

impl Aig {
    /// An empty graph containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::Const],
            inputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Total node count (constant + inputs + AND gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of AND gates.
    pub fn and_count(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Appends a fresh primary input and returns its literal.
    pub fn input(&mut self) -> Lit {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Input(self.inputs.len() as u32));
        self.inputs.push(id);
        Lit::of_node(id)
    }

    /// The positive literal of the input at position `pos`.
    pub fn input_lit(&self, pos: usize) -> Lit {
        Lit::of_node(self.inputs[pos])
    }

    /// The input-order position of `lit`'s node, if it is an input.
    pub fn input_index(&self, lit: Lit) -> Option<usize> {
        match self.nodes[lit.node() as usize] {
            Node::Input(pos) => Some(pos as usize),
            _ => None,
        }
    }

    /// AND of two literals with constant propagation and structural
    /// hashing. Never creates a node when a two-level rule decides the
    /// result.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == Lit::FALSE || b == Lit::FALSE || a == b.not() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(a.0, b.0)) {
            return Lit::of_node(node);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a.0, b.0), id);
        Lit::of_node(id)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// XOR as two ANDs.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let l = self.and(a, b.not());
        let r = self.and(a.not(), b);
        self.or(l, r)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).not()
    }

    /// `if c { t } else { e }`.
    pub fn mux(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        let th = self.and(c, t);
        let el = self.and(c.not(), e);
        self.or(th, el)
    }

    /// Bit-parallel simulation: evaluates every node under the 64 input
    /// patterns packed into `input_words` (one word per input, in input
    /// creation order; missing trailing inputs read 0) and returns one
    /// word per node.
    pub fn sim64(&self, input_words: &[u64]) -> Vec<u64> {
        let mut vals = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match node {
                Node::Const => 0,
                Node::Input(pos) => input_words.get(*pos as usize).copied().unwrap_or(0),
                Node::And(a, b) => {
                    let av = vals[a.node() as usize] ^ if a.negated() { !0 } else { 0 };
                    let bv = vals[b.node() as usize] ^ if b.negated() { !0 } else { 0 };
                    av & bv
                }
            };
        }
        vals
    }

    /// Evaluates one literal against a node-value table from [`Aig::sim64`].
    pub fn read64(vals: &[u64], lit: Lit) -> u64 {
        vals[lit.node() as usize] ^ if lit.negated() { !0 } else { 0 }
    }

    /// Evaluates one literal under a boolean assignment to primary inputs
    /// (indexed by input creation order; missing inputs read false).
    pub fn eval(&self, inputs: &[bool], lit: Lit) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let vals = self.sim64(&words);
        Aig::read64(&vals, lit) & 1 == 1
    }

    /// The fanin literals of an AND node, if `node` is one.
    pub(crate) fn and_fanin(&self, node: u32) -> Option<(Lit, Lit)> {
        match self.nodes[node as usize] {
            Node::And(a, b) => Some((a, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rules() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::FALSE, a), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(Lit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), Lit::FALSE);
        assert_eq!(g.and_count(), 0, "no nodes created by folded ANDs");
    }

    #[test]
    fn strash_dedupes_and_negation_is_free() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let y = g.and(a, b);
        assert_eq!(g.and(b, a), y);
        assert_eq!(y.not().not(), y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn xor_mux_semantics_via_sim() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let x = g.xor(a, b);
        let m = g.mux(c, a, b);
        for bits in 0..8u64 {
            let (av, bv, cv) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            assert_eq!(g.eval(&[av, bv, cv], x), av ^ bv);
            assert_eq!(g.eval(&[av, bv, cv], m), if cv { av } else { bv });
        }
    }

    #[test]
    fn sim64_matches_scalar_eval() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let n1 = g.and(a, b);
        let n2 = g.or(n1, c.not());
        let root = g.xor(n2, a);
        // Patterns: lane i carries assignment i of the 8-value truth table.
        let words = [0xAAu64, 0xCC, 0xF0];
        let vals = g.sim64(&words);
        for lane in 0..8 {
            let ins: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
            assert_eq!(
                Aig::read64(&vals, root) >> lane & 1 == 1,
                g.eval(&ins, root),
                "lane {lane}"
            );
        }
    }
}
