//! Formal equivalence-checking oracle for compiled Verilog designs.
//!
//! Simulation-based verdicts are only as strong as their stimuli: a
//! candidate that happens to agree with the golden design on every
//! driven input vector still passes, and the oracle-ablation experiments
//! show such false passes are exactly what weakened stimuli produce.
//! This crate decides `candidate ≡ golden` *for all* inputs instead:
//!
//! 1. [`bitblast`] symbolically executes the existing compiled bytecode
//!    (the same `CompiledDesign` the simulator runs) into an
//!    And-Inverter Graph, with a documented two-valued abstraction of
//!    the four-state domain (per-bit taint, sound by construction);
//! 2. [`aig`] hash-conses both designs into **one** graph, so the miter
//!    over their outputs often collapses to constant false structurally;
//! 3. surviving miters go through random bit-parallel simulation (a
//!    cheap counterexample fishery) and then [`cnf`]/[`sat`] — a
//!    Tseitin encoding feeding a small CDCL solver with watched
//!    literals, first-UIP learning, VSIDS and restarts;
//! 4. [`equiv`] orchestrates the pipeline and renders a three-valued
//!    [`equiv::EquivVerdict`]: `Equivalent`, `Counterexample` (a
//!    concrete stimulus, later replayed on the scalar simulator), or
//!    `Unknown` with the reason (taint, budget, unsupported construct).
//!
//! Nothing in this crate trusts itself: counterexamples are confirmed
//! by replay, `Equivalent` is only reported on taint-free outputs, and
//! the property suite cross-checks every verdict against cosimulation.

pub mod aig;
pub mod bitblast;
pub mod cnf;
pub mod equiv;
pub mod sat;

pub use aig::{Aig, Lit};
pub use bitblast::{BlastError, Blaster, SVal};
pub use cnf::{encode, CnfMap};
pub use equiv::{
    check_equiv, hard_mismatch, replay_cex, CexStep, CexTrace, EquivOptions, EquivReport,
    EquivVerdict, PreambleOp, ReplayMismatch, UnknownReason,
};
pub use sat::{SatResult, SatStats, Solver};
