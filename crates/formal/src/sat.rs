//! A small CDCL SAT solver — the fallback engine of the formal oracle.
//!
//! The workspace carries no external solver, so this is a compact,
//! self-contained implementation of the standard conflict-driven clause
//! learning loop: two-watched-literal propagation, first-UIP conflict
//! analysis with non-chronological backjumping, VSIDS-style variable
//! activity with phase saving, and geometric restarts. It is budgeted:
//! [`Solver::solve`] gives up after a conflict limit and reports
//! [`SatResult::Unknown`], which the equivalence layer surfaces as a
//! typed `Unknown` verdict rather than a wrong answer.
//!
//! Correctness posture: SAT answers ("a counterexample exists") are
//! always re-validated downstream by concrete replay, so a model here is
//! never trusted blindly. UNSAT answers participate in `Equivalent`
//! verdicts, so the propagation/analysis core keeps to the textbook
//! algorithm with no speculative optimizations, and the property suite
//! cross-checks verdicts against brute-force enumeration and cosim.

/// Assignment states.
const UNASSIGNED: u8 = 2;

/// Outcome of a (budgeted) solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found; read it via [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget ran out before a decision was reached.
    Unknown,
}

/// Search counters, for benchmarking and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SatStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

/// Internal literal encoding: `var * 2 + sign` (sign 1 = negated).
type ILit = u32;

#[inline]
fn ilit(var: usize, neg: bool) -> ILit {
    (var as u32) << 1 | u32::from(neg)
}

#[inline]
fn ivar(l: ILit) -> usize {
    (l >> 1) as usize
}

#[inline]
fn ineg(l: ILit) -> ILit {
    l ^ 1
}

/// Converts a DIMACS-style literal (±(var+1), 1-based) to internal form.
#[inline]
fn from_dimacs(l: i32) -> ILit {
    debug_assert!(l != 0);
    ilit(l.unsigned_abs() as usize - 1, l < 0)
}

/// A budgeted CDCL solver over variables `1..=n` (DIMACS numbering).
///
/// # Examples
///
/// ```
/// use haven_formal::sat::{SatResult, Solver};
/// let mut s = Solver::new(2);
/// s.add_clause(&[1, 2]);
/// s.add_clause(&[-1, 2]);
/// s.add_clause(&[1, -2]);
/// assert_eq!(s.solve(1_000), SatResult::Sat);
/// assert!(s.value(1) && s.value(2));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    /// Clause database; watched literals are positions 0 and 1.
    clauses: Vec<Vec<ILit>>,
    /// Per-literal watch lists of clause indexes.
    watches: Vec<Vec<u32>>,
    /// Per-variable assignment: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Per-variable decision level.
    level: Vec<u32>,
    /// Per-variable implying clause (`u32::MAX` for decisions).
    reason: Vec<u32>,
    /// Assigned literals in chronological order.
    trail: Vec<ILit>,
    /// Trail length at each decision level.
    trail_lim: Vec<usize>,
    /// Propagation queue head (index into `trail`).
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Set when an empty clause was added or derived at level 0.
    unsat: bool,
    stats: SatStats,
    /// Conflict-analysis scratch.
    seen: Vec<bool>,
}

const NO_REASON: u32 = u32::MAX;

impl Solver {
    /// A solver over `nvars` variables and no clauses.
    pub fn new(nvars: usize) -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); nvars * 2],
            assign: vec![UNASSIGNED; nvars],
            level: vec![0; nvars],
            reason: vec![NO_REASON; nvars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; nvars],
            act_inc: 1.0,
            phase: vec![false; nvars],
            unsat: false,
            stats: SatStats::default(),
            seen: vec![false; nvars],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Search counters so far.
    pub fn stats(&self) -> &SatStats {
        &self.stats
    }

    /// Adds a clause of DIMACS-style literals (±var, 1-based). Tautologies
    /// are dropped, duplicates removed; the empty clause marks the
    /// formula unsatisfiable.
    pub fn add_clause(&mut self, dimacs: &[i32]) {
        if self.unsat {
            return;
        }
        let mut lits: Vec<ILit> = dimacs.iter().map(|&l| from_dimacs(l)).collect();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0] == ineg(w[1]) {
                return; // tautology
            }
        }
        // Drop literals already false at level 0; stop early on a literal
        // already true at level 0.
        debug_assert!(self.trail_lim.is_empty(), "clauses are added before solving");
        let mut reduced = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.lit_value(l) {
                Some(true) => return,
                Some(false) => {}
                None => reduced.push(l),
            }
        }
        match reduced.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(reduced[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[reduced[0] as usize].push(ci);
                self.watches[reduced[1] as usize].push(ci);
                self.clauses.push(reduced);
            }
        }
    }

    /// The model value of a DIMACS variable after [`SatResult::Sat`].
    /// Unassigned variables (outside every clause) read `false`.
    pub fn value(&self, var: i32) -> bool {
        debug_assert!(var > 0);
        self.assign.get(var as usize - 1).map(|&a| a == 1).unwrap_or(false)
    }

    #[inline]
    fn lit_value(&self, l: ILit) -> Option<bool> {
        match self.assign[ivar(l)] {
            UNASSIGNED => None,
            v => Some((v == 1) != (l & 1 == 1)),
        }
    }

    /// Assigns `l` true; returns false if it is already false.
    fn enqueue(&mut self, l: ILit, reason: u32) -> bool {
        match self.lit_value(l) {
            Some(v) => v,
            None => {
                let v = ivar(l);
                self.assign[v] = u8::from(l & 1 == 0);
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = ineg(p);
            let mut ws = std::mem::take(&mut self.watches[false_lit as usize]);
            let mut keep = 0usize;
            let mut conflict = None;
            'clauses: for wi in 0..ws.len() {
                let ci = ws[wi];
                {
                    let lits = &mut self.clauses[ci as usize];
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[ci as usize][0];
                if self.lit_value(first) == Some(true) {
                    ws[keep] = ci;
                    keep += 1;
                    continue;
                }
                for k in 2..self.clauses[ci as usize].len() {
                    let cand = self.clauses[ci as usize][k];
                    if self.lit_value(cand) != Some(false) {
                        self.clauses[ci as usize].swap(1, k);
                        self.watches[cand as usize].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement watch: clause is unit or conflicting.
                ws[keep] = ci;
                keep += 1;
                if !self.enqueue(first, ci) {
                    conflict = Some(ci);
                    // Retain the rest of the watch list untouched; the
                    // kept prefix never outruns the scan cursor, so this
                    // forward copy is in bounds.
                    ws.copy_within(wi + 1.., keep);
                    keep += ws.len() - wi - 1;
                    break;
                }
            }
            ws.truncate(keep);
            debug_assert!(self.watches[false_lit as usize].is_empty());
            self.watches[false_lit as usize] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.act_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<ILit>, u32) {
        let current = self.trail_lim.len() as u32;
        let mut learnt: Vec<ILit> = Vec::new();
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut p: Option<ILit> = None;
        loop {
            // Clone the reason clause: activity bumps below need `&mut self`.
            let lits = self.clauses[confl as usize].clone();
            for &q in &lits {
                if Some(q) == p.map(ineg) {
                    continue;
                }
                let v = ivar(q);
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[ivar(self.trail[idx])] {
                    break;
                }
            }
            let pl = self.trail[idx];
            let v = ivar(pl);
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(ineg(pl));
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON, "implied literal has a reason");
            p = Some(ineg(pl));
        }
        let asserting = p.expect("conflict at a positive level has a UIP");
        for &q in &learnt {
            self.seen[ivar(q)] = false;
        }
        let back = learnt.iter().map(|&q| self.level[ivar(q)]).max().unwrap_or(0);
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(asserting);
        // Position a literal of the backjump level second, so the watch
        // invariant holds immediately after backjumping.
        learnt.sort_by_key(|&q| std::cmp::Reverse(self.level[ivar(q)]));
        clause.extend(learnt);
        (clause, back)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.trail_lim.len() as u32 > to_level {
            let lim = self.trail_lim.pop().expect("level to unwind");
            for &l in &self.trail[lim..] {
                let v = ivar(l);
                self.phase[v] = self.assign[v] == 1;
                self.assign[v] = UNASSIGNED;
                self.reason[v] = NO_REASON;
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<ILit> {
        let mut best: Option<usize> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == UNASSIGNED
                && best.map(|b| self.activity[v] > self.activity[b]).unwrap_or(true)
            {
                best = Some(v);
            }
        }
        best.map(|v| ilit(v, !self.phase[v]))
    }

    /// Runs the CDCL loop until a verdict or `max_conflicts` conflicts.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let budget_end = self.stats.conflicts.saturating_add(max_conflicts);
        let mut restart_limit = 100u64;
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (clause, back) = self.analyze(confl);
                self.backtrack(back);
                self.act_inc /= 0.95;
                let asserting = clause[0];
                if clause.len() == 1 {
                    debug_assert_eq!(back, 0);
                    if !self.enqueue(asserting, NO_REASON) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let ci = self.clauses.len() as u32;
                    self.watches[clause[0] as usize].push(ci);
                    self.watches[clause[1] as usize].push(ci);
                    self.clauses.push(clause);
                    self.stats.learned += 1;
                    let ok = self.enqueue(asserting, ci);
                    debug_assert!(ok, "asserting literal is unassigned after backjump");
                }
                if self.stats.conflicts >= budget_end {
                    self.backtrack(0);
                    return SatResult::Unknown;
                }
                if conflicts_here >= restart_limit {
                    conflicts_here = 0;
                    restart_limit += restart_limit / 2;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                }
            } else {
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, NO_REASON);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force satisfiability over up to 20 variables.
    fn brute(nvars: usize, clauses: &[Vec<i32>]) -> bool {
        (0..1u64 << nvars).any(|m| {
            clauses.iter().all(|c| {
                c.iter().any(|&l| {
                    let v = l.unsigned_abs() as usize - 1;
                    (m >> v & 1 == 1) != (l < 0)
                })
            })
        })
    }

    fn check(nvars: usize, clauses: &[Vec<i32>]) {
        let mut s = Solver::new(nvars);
        for c in clauses {
            s.add_clause(c);
        }
        let got = s.solve(100_000);
        let want = brute(nvars, clauses);
        match got {
            SatResult::Sat => {
                assert!(want, "solver said SAT on an UNSAT formula {clauses:?}");
                for c in clauses {
                    assert!(
                        c.iter().any(|&l| s.value(l.abs()) == (l > 0)),
                        "model violates clause {c:?}"
                    );
                }
            }
            SatResult::Unsat => assert!(!want, "solver said UNSAT on a SAT formula {clauses:?}"),
            SatResult::Unknown => panic!("budget exhausted on a tiny formula"),
        }
    }

    #[test]
    fn trivial_formulas() {
        check(1, &[vec![1]]);
        check(1, &[vec![1], vec![-1]]);
        check(2, &[vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]]);
        check(3, &[vec![1, 2, 3], vec![-1], vec![-2]]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i in hole j. Vars: 1 + i*2 + j.
        let v = |i: i32, j: i32| 1 + i * 2 + j;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let mut s = Solver::new(6);
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(100_000), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn randomized_3sat_agrees_with_brute_force() {
        // Deterministic xorshift so the sweep is reproducible.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..300 {
            let nvars = 3 + (next() % 8) as usize;
            let nclauses = 2 + (next() % (nvars as u64 * 5)) as usize;
            let clauses: Vec<Vec<i32>> = (0..nclauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % nvars as u64) as i32 + 1;
                            if next() & 1 == 1 {
                                -v
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
            check(nvars, &clauses);
            let _ = round;
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // Pigeonhole 5-into-4 needs real search; a 1-conflict budget must
        // give Unknown, never a wrong verdict.
        let v = |i: i32, j: i32| 1 + i * 4 + j;
        let mut s = Solver::new(20);
        for i in 0..5 {
            s.add_clause(&[v(i, 0), v(i, 1), v(i, 2), v(i, 3)]);
        }
        for j in 0..4 {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    s.add_clause(&[-v(a, j), -v(b, j)]);
                }
            }
        }
        assert_eq!(s.solve(1), SatResult::Unknown);
        // The same solver can resume with a bigger budget.
        assert_eq!(s.solve(1_000_000), SatResult::Unsat);
    }
}
