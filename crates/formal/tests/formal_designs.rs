//! End-to-end checks of the formal oracle on real Verilog designs:
//! the bitblaster is differentially tested against the scalar simulator
//! (same compiled bytecode, two interpreters), and `check_equiv`
//! verdicts are exercised across the structural, simulation and SAT
//! stages — every counterexample is replayed on the simulator before
//! the test believes it.

use std::sync::Arc;

use haven_formal::equiv::PreambleOp;
use haven_formal::{check_equiv, replay_cex, Aig, Blaster, EquivOptions, EquivVerdict, Lit};
use haven_verilog::compile::CompiledDesign;
use haven_verilog::exec::CompiledSim;

fn compiled(src: &str) -> Arc<CompiledDesign> {
    let design = haven_verilog::elab::compile(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    Arc::new(CompiledDesign::new(design))
}

fn sig(cd: &CompiledDesign, name: &str) -> u32 {
    cd.design().signal(name).unwrap_or_else(|| panic!("no signal {name}")).0
}

struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Drives the blaster and the scalar simulator with the same constant
/// stimulus and asserts bit-level agreement on every output: an
/// untainted blaster bit must be constant and equal to the simulator's
/// bit; a tainted bit makes no claim and is skipped.
fn assert_outputs_agree(g: &Aig, b: &Blaster, sim: &CompiledSim, cd: &CompiledDesign, ctx: &str) {
    for (name, width) in cd.design().output_ports() {
        let sv = b.value(sig(cd, &name));
        let lv = sim.peek(&name).unwrap();
        for i in 0..width {
            // Under all-constant stimulus the taint literal folds to a
            // constant; a (conditionally or certainly) tainted bit makes
            // no claim and is skipped.
            let xl = sv.x[i];
            assert!(
                xl.is_const(),
                "{ctx}: {name}[{i}] taint literal symbolic under constant stimulus"
            );
            if g.eval(&[], xl) {
                continue;
            }
            let lit = sv.bits[i];
            assert!(
                lit.is_const(),
                "{ctx}: {name}[{i}] untainted but symbolic under constant stimulus"
            );
            let formal = g.eval(&[], lit);
            let scalar = lv.bit(i);
            assert!(
                scalar.is_known(),
                "{ctx}: {name}[{i}] formal={formal} but simulator has x/z — unsound claim"
            );
            assert_eq!(
                formal,
                scalar.to_bool().unwrap(),
                "{ctx}: {name}[{i}] disagrees"
            );
        }
    }
}

/// Random constant-stimulus differential sweep over a combinational
/// design: poke all inputs with random constants, compare all outputs.
fn diff_sweep_comb(src: &str, rounds: usize, seed: u64) {
    let cd = compiled(src);
    let mut g = Aig::new();
    let mut b = Blaster::new(&mut g, &cd).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut sim = CompiledSim::new(Arc::clone(&cd)).unwrap();
    let mut rng = Xorshift(seed | 1);
    for round in 0..rounds {
        for (name, width) in cd.design().input_ports() {
            let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
            let v = rng.next() & mask;
            b.poke_const(&mut g, sig(&cd, &name), v).unwrap();
            sim.poke_u64(&name, v).unwrap();
        }
        assert_outputs_agree(&g, &b, &sim, &cd, &format!("round {round}"));
    }
}

#[test]
fn diff_alu_ops() {
    // One design touching most of the expression grammar: arithmetic,
    // shifts, comparisons, bitwise/logical ops, ternary, case.
    let src = "module alu(input [2:0] op, input [7:0] a, input [7:0] b, output reg [7:0] y,
                          output lt, output eq, output any);
    assign lt = a < b;
    assign eq = a == b;
    assign any = |a || &b;
    always @(*) begin
        case (op)
            3'd0: y = a + b;
            3'd1: y = a - b;
            3'd2: y = a & b;
            3'd3: y = a | b;
            3'd4: y = a ^ b;
            3'd5: y = a << b[2:0];
            3'd6: y = a >> b[2:0];
            default: y = (a > b) ? a : b;
        endcase
    end
endmodule";
    diff_sweep_comb(src, 64, 0xA1);
}

#[test]
fn diff_mul_div_and_wide() {
    let src = "module arith(input [6:0] a, input [6:0] b, output [6:0] p, output [6:0] q,
                            output [6:0] r);
    assign p = a * b;
    assign q = b == 0 ? 7'd0 : a / b;
    assign r = b == 0 ? 7'd0 : a % b;
endmodule";
    diff_sweep_comb(src, 64, 0xB2);
}

#[test]
fn diff_concat_replicate_slices() {
    let src = "module bits(input [7:0] a, input [3:0] s, output [15:0] y, output [7:0] z,
                           output [2:0] w);
    assign y = {a[3:0], {2{a[7:6]}}, a ^ 8'h5a};
    assign z = {8{a[0]}} & a;
    assign w = a[s +: 1] ? 3'b101 : {a[6], a[4], a[2]};
endmodule";
    // Dynamic base part-select may be unsupported; fall back to a
    // simpler body if the frontend rejects it.
    if haven_verilog::elab::compile(src).is_ok() {
        diff_sweep_comb(src, 64, 0xC3);
    }
    let src2 = "module bits2(input [7:0] a, input [2:0] s, output [15:0] y, output z);
    assign y = {a[3:0], {2{a[7:6]}}, a ^ 8'h5a};
    assign z = a[s];
endmodule";
    diff_sweep_comb(src2, 64, 0xC4);
}

#[test]
fn diff_priority_casez() {
    let src = "module penc(input [3:0] req, output reg [1:0] idx, output reg valid);
    always @(*) begin
        valid = 1'b1;
        casez (req)
            4'b1???: idx = 2'd3;
            4'b01??: idx = 2'd2;
            4'b001?: idx = 2'd1;
            4'b0001: idx = 2'd0;
            default: begin idx = 2'd0; valid = 1'b0; end
        endcase
    end
endmodule";
    diff_sweep_comb(src, 32, 0xD4);
}

#[test]
fn diff_for_loop_popcount() {
    let src = "module pop(input [7:0] a, output reg [3:0] n);
    integer i;
    always @(*) begin
        n = 4'd0;
        for (i = 0; i < 8; i = i + 1)
            n = n + {3'b000, a[i]};
    end
endmodule";
    if haven_verilog::elab::compile(src).is_ok() {
        diff_sweep_comb(src, 32, 0xE5);
    }
}

#[test]
fn diff_sequential_gray_counter() {
    let src = "module gray(input clk, input rst, input en, output [3:0] g);
    reg [3:0] bin;
    always @(posedge clk)
        if (rst) bin <= 4'd0;
        else if (en) bin <= bin + 4'd1;
    assign g = bin ^ (bin >> 1);
endmodule";
    let cd = compiled(src);
    let mut g = Aig::new();
    let mut b = Blaster::new(&mut g, &cd).unwrap();
    let mut sim = CompiledSim::new(Arc::clone(&cd)).unwrap();
    let (clk, rst, en) = (sig(&cd, "clk"), sig(&cd, "rst"), sig(&cd, "en"));
    let mut rng = Xorshift(0xF6);
    // Reset, then a random enable pattern.
    for (s, v) in [(rst, 1), (en, 0)] {
        b.poke_const(&mut g, s, v).unwrap();
        sim.poke_u64(if s == rst { "rst" } else { "en" }, v).unwrap();
    }
    b.tick(&mut g, clk).unwrap();
    sim.tick("clk").unwrap();
    b.poke_const(&mut g, rst, 0).unwrap();
    sim.poke_u64("rst", 0).unwrap();
    for step in 0..24 {
        let e = rng.next() & 1;
        b.poke_const(&mut g, en, e).unwrap();
        sim.poke_u64("en", e).unwrap();
        b.tick(&mut g, clk).unwrap();
        sim.tick("clk").unwrap();
        assert_outputs_agree(&g, &b, &sim, &cd, &format!("step {step}"));
    }
}

#[test]
fn diff_uninitialized_register_stays_tainted() {
    let src = "module m(input [1:0] a, output [1:0] y);
    reg [1:0] r;
    assign y = r & a;
endmodule";
    let cd = compiled(src);
    let mut g = Aig::new();
    let mut b = Blaster::new(&mut g, &cd).unwrap();
    let mut sim = CompiledSim::new(Arc::clone(&cd)).unwrap();
    // a = 0 forces known zeros through the absorption rule; a = 3 leaves
    // the x from `r` in charge.
    for v in [0u64, 3, 1] {
        b.poke_const(&mut g, sig(&cd, "a"), v).unwrap();
        sim.poke_u64("a", v).unwrap();
        assert_outputs_agree(&g, &b, &sim, &cd, &format!("a={v}"));
    }
    b.poke_const(&mut g, sig(&cd, "a"), 3).unwrap();
    let sv = b.value(sig(&cd, "y"));
    assert!(
        sv.x.iter().all(|&x| x == Lit::TRUE),
        "r is never written: y must stay tainted"
    );
}

/// Exhaustive symbolic cross-check: every assignment of a symbolic
/// 3-bit adder evaluated through the AIG matches a freshly poked
/// simulator.
#[test]
fn symbolic_adder_matches_simulator_exhaustively() {
    let src = "module add3(input [2:0] a, input [2:0] b, output [3:0] s);
    assign s = {1'b0, a} + {1'b0, b};
endmodule";
    let cd = compiled(src);
    let mut g = Aig::new();
    let mut b = Blaster::new(&mut g, &cd).unwrap();
    let la: Vec<_> = (0..3).map(|_| g.input()).collect();
    let lb: Vec<_> = (0..3).map(|_| g.input()).collect();
    b.poke_sym(&mut g, sig(&cd, "a"), la).unwrap();
    b.poke_sym(&mut g, sig(&cd, "b"), lb).unwrap();
    let sv = b.value(sig(&cd, "s")).clone();
    assert!(
        sv.x.iter().all(|&x| x == Lit::FALSE),
        "adder output must be taint-free"
    );
    for av in 0u64..8 {
        for bv in 0u64..8 {
            let mut assignment = vec![false; 6];
            for i in 0..3 {
                assignment[i] = av >> i & 1 == 1;
                assignment[3 + i] = bv >> i & 1 == 1;
            }
            let formal: u64 = (0..4)
                .map(|i| u64::from(g.eval(&assignment, sv.bits[i])) << i)
                .sum();
            let mut sim = CompiledSim::new(Arc::clone(&cd)).unwrap();
            sim.poke_u64("a", av).unwrap();
            sim.poke_u64("b", bv).unwrap();
            assert_eq!(formal, sim.peek("s").unwrap().to_u64().unwrap(), "a={av} b={bv}");
        }
    }
}

#[test]
fn identical_designs_fold_structurally() {
    let src = "module add(input [7:0] a, input [7:0] b, output [7:0] y);
    assign y = a + b;
endmodule";
    let report = check_equiv(&compiled(src), &compiled(src), &EquivOptions::default());
    assert_eq!(report.verdict, EquivVerdict::Equivalent);
    assert!(report.structural, "shared strash must fold identical designs");
}

#[test]
fn distributivity_proved_by_sat() {
    let g = "module f(input a, input b, input c, output y);
    assign y = (a & b) | (a & c);
endmodule";
    let c = "module f(input a, input b, input c, output y);
    assign y = a & (b | c);
endmodule";
    let report = check_equiv(&compiled(g), &compiled(c), &EquivOptions::default());
    assert_eq!(report.verdict, EquivVerdict::Equivalent);
}

#[test]
fn broken_adder_yields_confirmed_counterexample() {
    let golden = compiled(
        "module add(input [7:0] a, input [7:0] b, output [7:0] y);
    assign y = a + b;
endmodule",
    );
    let cand = compiled(
        "module add(input [7:0] a, input [7:0] b, output [7:0] y);
    assign y = a + b + 8'd1;
endmodule",
    );
    let report = check_equiv(&golden, &cand, &EquivOptions::default());
    let EquivVerdict::Counterexample(trace) = &report.verdict else {
        panic!("expected a counterexample, got {:?}", report.verdict);
    };
    assert_eq!(trace.mismatch_output, "y");
    let m = replay_cex(&golden, &cand, trace, None).expect("counterexample must replay");
    assert_eq!(m.output, "y");
    assert_eq!(m.step, trace.mismatch_step);
}

#[test]
fn subtle_comparator_bug_found_and_replayed() {
    // `<=` vs `<`: differs only when a == b.
    let golden = compiled(
        "module cmp(input [7:0] a, input [7:0] b, output y);
    assign y = a <= b;
endmodule",
    );
    let cand = compiled(
        "module cmp(input [7:0] a, input [7:0] b, output y);
    assign y = a < b;
endmodule",
    );
    let report = check_equiv(&golden, &cand, &EquivOptions::default());
    let EquivVerdict::Counterexample(trace) = &report.verdict else {
        panic!("expected a counterexample, got {:?}", report.verdict);
    };
    let sets = &trace.steps[0].sets;
    let get = |n: &str| sets.iter().find(|(s, _)| s == n).unwrap().1;
    assert_eq!(get("a"), get("b"), "only a == b distinguishes <= from <");
    assert!(replay_cex(&golden, &cand, trace, None).is_some());
}

fn counter_src(body: &str) -> String {
    format!(
        "module ctr(input clk, input rst, input en, output reg [3:0] q);
    always @(posedge clk)
        if (rst) q <= 4'd0;
        else if (en) q <= {body};
endmodule"
    )
}

fn seq_opts() -> EquivOptions {
    EquivOptions {
        clock: Some("clk".into()),
        preamble: vec![
            PreambleOp::Set("rst".into(), 1),
            PreambleOp::Set("en".into(), 0),
            PreambleOp::Tick,
            PreambleOp::Set("rst".into(), 0),
        ],
        seq_steps: 4,
        ..EquivOptions::default()
    }
}

#[test]
fn equivalent_counters_after_reset() {
    let golden = compiled(&counter_src("q + 4'd1"));
    let cand = compiled(&counter_src("q + 4'd2 - 4'd1"));
    let report = check_equiv(&golden, &cand, &seq_opts());
    assert_eq!(report.verdict, EquivVerdict::Equivalent);
}

#[test]
fn buggy_counter_caught_by_unrolling_and_replayed() {
    let golden = compiled(&counter_src("q + 4'd1"));
    let cand = compiled(&counter_src("q + 4'd1 + (q == 4'd2 ? 4'd1 : 4'd0)"));
    let report = check_equiv(&golden, &cand, &seq_opts());
    let EquivVerdict::Counterexample(trace) = &report.verdict else {
        panic!("expected a counterexample, got {:?}", report.verdict);
    };
    // Reaching q == 2 needs three enabled cycles: a real multi-step cex.
    assert!(trace.mismatch_step >= 2, "mismatch at step {}", trace.mismatch_step);
    let m = replay_cex(&golden, &cand, trace, Some("clk")).expect("must replay");
    assert_eq!(m.output, "q");
    assert_eq!(m.step, trace.mismatch_step);
}

#[test]
fn unreset_state_reports_x_abstraction_unknown() {
    // No reset preamble: the registers start x, so nothing can be proved.
    let golden = compiled(&counter_src("q + 4'd1"));
    let cand = compiled(&counter_src("q + 4'd2"));
    let opts = EquivOptions {
        clock: Some("clk".into()),
        seq_steps: 3,
        ..EquivOptions::default()
    };
    let report = check_equiv(&golden, &cand, &opts);
    match &report.verdict {
        EquivVerdict::Unknown(_) | EquivVerdict::Counterexample(_) => {}
        v => panic!("x state must not prove equivalence: {v:?}"),
    }
}

#[test]
fn interface_mismatch_is_typed_unknown() {
    let a = compiled("module m(input x, output y); assign y = x; endmodule");
    let b = compiled("module m(input x, input z, output y); assign y = x & z; endmodule");
    let report = check_equiv(&a, &b, &EquivOptions::default());
    assert!(
        matches!(
            report.verdict,
            EquivVerdict::Unknown(haven_formal::UnknownReason::InterfaceMismatch(_))
        ),
        "got {:?}",
        report.verdict
    );
}

#[test]
fn sequential_without_clock_is_unsupported() {
    let cd = compiled(&counter_src("q + 4'd1"));
    let report = check_equiv(&cd, &cd, &EquivOptions::default());
    assert!(
        matches!(
            report.verdict,
            EquivVerdict::Unknown(haven_formal::UnknownReason::Unsupported(_))
        ),
        "got {:?}",
        report.verdict
    );
}
