//! Format compatibility across crates: `haven-spec`'s prompt renderers and
//! `haven-modality`'s parsers were written independently (to avoid a crate
//! cycle) — these tests pin them together.

use haven_modality::state_diagram::StateDiagram;
use haven_modality::truth_table::TruthTable;
use haven_modality::{detect, ModalityKind};
use haven_spec::builders;
use haven_spec::describe::{state_diagram_text, truth_table_text};
use haven_spec::ir::Behavior;

#[test]
fn spec_rendered_truth_tables_parse_back_identically() {
    let spec = builders::truth_table_spec(
        "t",
        vec!["a".into(), "b".into(), "c".into()],
        vec!["out".into(), "y".into()],
        (0..8u64).map(|i| (i, i % 4)).collect(),
    );
    let Behavior::TruthTable(tt) = &spec.behavior else {
        panic!()
    };
    let text = truth_table_text(tt);
    let parsed = TruthTable::parse(&text).expect("modality parser accepts spec emitter output");
    assert_eq!(parsed.inputs, tt.inputs);
    assert_eq!(parsed.outputs, tt.outputs);
    assert_eq!(parsed.rows, tt.rows);
}

#[test]
fn spec_rendered_state_diagrams_parse_back_identically() {
    let spec = builders::fsm(
        "f",
        vec!["IDLE".into(), "RUN".into(), "DONE".into()],
        0,
        vec![(1, 0), (2, 1), (2, 2)],
        vec![0, 1, 1],
    );
    let Behavior::Fsm(f) = &spec.behavior else {
        panic!()
    };
    let text = state_diagram_text(f);
    let parsed = StateDiagram::parse(&text).expect("modality parser accepts spec emitter output");
    let roundtrip = parsed.to_fsm_spec(&f.output, f.output_width).unwrap();
    assert_eq!(roundtrip.states, f.states);
    assert_eq!(roundtrip.transitions, f.transitions);
    assert_eq!(roundtrip.outputs, f.outputs);
}

#[test]
fn described_symbolic_prompts_are_detected_as_their_modality() {
    use haven_spec::describe::{describe, DescribeStyle};
    let tt_prompt = describe(
        &builders::truth_table_spec(
            "t",
            vec!["a".into(), "b".into()],
            vec!["out".into()],
            vec![(0, 0), (1, 1), (2, 1), (3, 0)],
        ),
        DescribeStyle::Engineer,
    );
    let blocks = detect(&tt_prompt);
    assert_eq!(blocks.len(), 1, "{tt_prompt}");
    assert_eq!(blocks[0].kind, ModalityKind::TruthTable);

    let fsm_prompt = describe(&builders::fsm_ab("f"), DescribeStyle::Engineer);
    let blocks = detect(&fsm_prompt);
    assert_eq!(blocks.len(), 1, "{fsm_prompt}");
    assert_eq!(blocks[0].kind, ModalityKind::StateDiagram);
}

#[test]
fn sicot_nl_is_perceivable_by_the_lm() {
    // modality NL -> lm perception, the structured path end to end.
    let tt = TruthTable::parse("a b out\n0 0 1\n0 1 0\n1 0 0\n1 1 1").unwrap();
    let prompt = format!(
        "Implement a combinational module named `m`.\n{}\nThe module header is: `module m (input a, input b, output out);`",
        tt.to_natural_language()
    );
    let p = haven_lm::perception::perceive(&prompt).unwrap();
    let Behavior::TruthTable(spec_tt) = &p.spec.behavior else {
        panic!("{:?}", p.spec.behavior)
    };
    assert_eq!(spec_tt.lookup(0b00), 1);
    assert_eq!(spec_tt.lookup(0b11), 1);
    assert_eq!(spec_tt.lookup(0b01), 0);
}

#[test]
fn header_sentence_is_parsed_by_the_verilog_parser() {
    use haven_spec::codegen::emit_header;
    for spec in [
        builders::counter("c", 4, None),
        builders::alu(
            "a",
            8,
            vec![haven_spec::ir::AluOp::Add, haven_spec::ir::AluOp::Sub],
        ),
        builders::adder("add", 16),
    ] {
        let header = emit_header(&spec);
        let as_module = format!("{header} endmodule");
        haven_verilog::parser::parse(&as_module).unwrap_or_else(|e| panic!("{header}: {e}"));
    }
}
