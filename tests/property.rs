//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::cosimulate;
use haven_spec::stimuli::stimuli_for;
use haven_spec::{builders, Spec};
use haven_verilog::logic::LogicVec;

// ---- strategies -----------------------------------------------------------

fn arb_spec() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (2usize..=6).prop_map(|w| builders::adder("p_adder", w)),
        (1usize..=6).prop_map(|w| builders::mux2("p_mux", w)),
        (2usize..=6, proptest::option::of(2u64..=12)).prop_map(|(w, m)| {
            let m = m.map(|m| m.min((1u64 << w) - 1).max(2));
            builders::counter("p_cnt", w, m)
        }),
        (2usize..=8).prop_map(|w| builders::shift_register(
            "p_shift",
            w,
            haven_spec::ir::ShiftDirection::Right
        )),
        (1u64..=6).prop_map(|hp| builders::clock_divider("p_div", hp)),
        (1usize..=8, 1usize..=3).prop_map(|(w, s)| builders::pipeline("p_pipe", w, s)),
        proptest::collection::vec(any::<bool>(), 4).prop_map(|outs| {
            let rows: Vec<(u64, u64)> = outs
                .iter()
                .enumerate()
                .map(|(i, &o)| (i as u64, u64::from(o)))
                .collect();
            builders::truth_table_spec(
                "p_tt",
                vec!["a".into(), "b".into()],
                vec!["out".into()],
                rows,
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The keystone invariant at property scale: for any spec in the
    /// family, correct emission passes co-simulation under any stimulus
    /// seed.
    #[test]
    fn correct_emission_always_passes_cosim(spec in arb_spec(), seed in 0u64..1000) {
        let src = emit(&spec, &EmitStyle::correct());
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, seed));
        prop_assert!(
            report.verdict.functional_ok(),
            "{}: {:?}\n{src}",
            spec.name,
            report.verdict
        );
    }

    /// Logic vectors: u64 round-trips and operator/wrapping laws.
    #[test]
    fn logicvec_arithmetic_matches_u64(a in any::<u64>(), b in any::<u64>(), w in 1usize..=32) {
        let mask = (1u64 << w) - 1;
        let la = LogicVec::from_u64(a, w);
        let lb = LogicVec::from_u64(b, w);
        prop_assert_eq!(la.add(&lb).to_u64(), Some(a.wrapping_add(b) & mask));
        prop_assert_eq!(la.sub(&lb).to_u64(), Some(a.wrapping_sub(b) & mask));
        prop_assert_eq!((la.clone() & lb.clone()).to_u64(), Some(a & b & mask));
        prop_assert_eq!((la.clone() | lb.clone()).to_u64(), Some((a | b) & mask));
        prop_assert_eq!((la.clone() ^ lb.clone()).to_u64(), Some((a ^ b) & mask));
        prop_assert_eq!(la.not().to_u64(), Some(!a & mask));
    }

    /// Truth-table text round-trips through the modality parser.
    #[test]
    fn truth_table_text_roundtrip(outs in proptest::collection::vec(0u64..4, 8)) {
        use haven_modality::truth_table::TruthTable;
        let tt = TruthTable {
            inputs: vec!["a".into(), "b".into(), "c".into()],
            outputs: vec!["y".into(), "z".into()],
            rows: outs.iter().enumerate().map(|(i, &o)| (i as u64, o)).collect(),
        };
        let parsed = TruthTable::parse(&tt.to_text()).unwrap();
        prop_assert_eq!(parsed, tt);
    }

    /// Verilog pretty-printing round-trips through the parser.
    #[test]
    fn emitted_verilog_reparses_and_reprints_identically(spec in arb_spec()) {
        use haven_verilog::parser::parse;
        use haven_verilog::pretty::pretty_file;
        let src = emit(&spec, &EmitStyle::correct());
        let first = parse(&src).unwrap();
        let printed = pretty_file(&first);
        let second = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        prop_assert_eq!(pretty_file(&second), printed);
    }

    /// pass@k estimator invariants under arbitrary (n, c, k).
    #[test]
    fn passk_invariants(n in 1usize..=20, c_frac in 0.0f64..=1.0, k_frac in 0.0f64..1.0) {
        use haven_eval::passk::pass_at_k;
        let c = ((n as f64) * c_frac) as usize;
        let k = 1 + ((n - 1) as f64 * k_frac) as usize;
        let v = pass_at_k(n, c.min(n), k);
        prop_assert!((0.0..=1.0).contains(&v));
        if k < n {
            prop_assert!(pass_at_k(n, c.min(n), k + 1) + 1e-12 >= v);
        }
    }

    /// Instruction evolution never breaks machine-perceivability of
    /// engineer counter prompts and stays within its word budget.
    #[test]
    fn evolution_preserves_perceivability(seed in any::<u64>(), w in 2usize..=8) {
        use haven_datagen::evolve::evolve_instruction;
        use haven_spec::describe::{describe, DescribeStyle};
        let spec = builders::counter("c", w, None);
        let base = describe(&spec, DescribeStyle::Engineer);
        let evolved = evolve_instruction(&base, seed);
        let p = haven_lm::perception::perceive(&evolved).unwrap();
        prop_assert_eq!(&p.spec.behavior, &spec.behavior);
    }

    /// Quine–McCluskey minimization is exhaustively equivalent for random
    /// 4-variable functions.
    #[test]
    fn qm_minimization_is_equivalent(on_bits in 0u16..) {
        use haven_datagen::qm::minimal_sop;
        use haven_verilog::eval::{eval_expr, SignalEnv};
        let vars: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let minterms: Vec<u64> = (0..16).filter(|&m| on_bits >> m & 1 == 1).collect();
        let expr = minimal_sop(&vars, &minterms);
        struct Env<'a> {
            vars: &'a [String],
            value: u64,
        }
        impl SignalEnv for Env<'_> {
            fn value_of(&self, name: &str) -> Option<LogicVec> {
                let i = self.vars.iter().position(|v| v == name)?;
                Some(LogicVec::from_u64(self.value >> (3 - i) & 1, 1))
            }
            fn lsb_of(&self, _: &str) -> usize { 0 }
        }
        for value in 0..16u64 {
            let env = Env { vars: &vars, value };
            let got = eval_expr(&expr, &env).is_true();
            prop_assert_eq!(got, minterms.contains(&value), "at {:04b}", value);
        }
    }
}
