//! Cross-crate integration: the full HaVen story from dataset generation
//! through fine-tuning, SI-CoT, code generation and co-simulated scoring.

use haven::experiments::{Scale, Suites};
use haven::Haven;
use haven_datagen::FlowConfig;
use haven_eval::harness::{evaluate, EvalConfig, SicotMode};
use haven_lm::profiles;

fn tiny_scale() -> Scale {
    Scale {
        n: 3,
        temperatures: vec![0.2],
        task_limit: Some(24),
        flow: FlowConfig::small(11),
    }
}

#[test]
fn haven_beats_its_base_model_end_to_end() {
    let scale = tiny_scale();
    let suites = Suites::generate(&scale);
    let flow = haven_datagen::run(&scale.flow);
    let base = profiles::base_codeqwen();
    let haven = Haven::train(base.clone(), &flow, 0.2);

    let cfg_base = EvalConfig {
        n: scale.n,
        temperatures: scale.temperatures.clone(),
        sicot: SicotMode::Off,
        ..Default::default()
    };
    let cfg_haven = EvalConfig {
        sicot: SicotMode::SelfRefine,
        ..cfg_base.clone()
    };
    let base_score = evaluate(&base, &suites.human, &cfg_base)
        .unwrap()
        .pass_at(1);
    let haven_score = evaluate(haven.profile(), &suites.human, &cfg_haven)
        .unwrap()
        .pass_at(1);
    assert!(
        haven_score > base_score + 5.0,
        "HaVen {haven_score:.1} vs base {base_score:.1}"
    );
}

#[test]
fn generated_code_for_every_symbolic_task_is_scored_by_real_cosim() {
    use haven_spec::cosim::{cosimulate, Verdict};
    use haven_spec::stimuli::stimuli_for;

    let scale = tiny_scale();
    let suites = Suites::generate(&scale);
    let flow = haven_datagen::run(&scale.flow);
    let haven = Haven::train(profiles::base_deepseek(), &flow, 0.2);

    let mut verdicts = std::collections::HashMap::<&'static str, usize>::new();
    for task in suites.symbolic.iter().take(12) {
        let code = haven.generate(&task.prompt, &task.id, 0);
        let report = cosimulate(&task.spec, &code, &stimuli_for(&task.spec, task.stim_seed));
        let bucket = match report.verdict {
            Verdict::Pass => "pass",
            Verdict::SyntaxError(_) => "syntax",
            Verdict::InterfaceError(_) => "interface",
            Verdict::FunctionalMismatch { .. } => "functional",
            Verdict::SimulationError(_) => "simulation",
            Verdict::ResourceExhausted(_) => "exhausted",
            Verdict::HarnessFault(_) => "fault",
        };
        *verdicts.entry(bucket).or_default() += 1;
    }
    // A tuned model must pass a decent share; failures must be concrete
    // verdicts, not crashes.
    assert!(
        verdicts.get("pass").copied().unwrap_or(0) >= 4,
        "{verdicts:?}"
    );
}

#[test]
fn deterministic_experiments_reproduce_bit_for_bit() {
    let scale = tiny_scale();
    let suites = Suites::generate(&scale);
    let profile = profiles::rtlcoder_deepseek();
    let cfg = EvalConfig {
        n: 2,
        temperatures: vec![0.5],
        sicot: SicotMode::Off,
        ..Default::default()
    };
    let a = evaluate(&profile, &suites.machine, &cfg).unwrap();
    let b = evaluate(&profile, &suites.machine, &cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn taxonomy_maps_onto_model_channels() {
    use haven::HallucinationType;
    for t in HallucinationType::ALL {
        // Every sub-type is wired to a live channel of the model.
        let _ = t.channel().key();
        assert!(!t.mitigation().is_empty());
    }
}

#[test]
fn sicot_mitigates_symbolic_but_not_knowledge_hallucinations() {
    let scale = tiny_scale();
    let suites = Suites::generate(&scale);
    let base = profiles::base_codeqwen();
    let cfg_off = EvalConfig {
        n: 4,
        temperatures: vec![0.2],
        sicot: SicotMode::Off,
        ..Default::default()
    };
    let cfg_cot = EvalConfig {
        sicot: SicotMode::SelfRefine,
        ..cfg_off.clone()
    };
    // Symbolic tasks: SI-CoT should help clearly.
    let sym_off = evaluate(&base, &suites.symbolic, &cfg_off)
        .unwrap()
        .pass_at(1);
    let sym_cot = evaluate(&base, &suites.symbolic, &cfg_cot)
        .unwrap()
        .pass_at(1);
    assert!(sym_cot > sym_off, "symbolic: {sym_cot:.1} <= {sym_off:.1}");
    // Machine tasks carry few symbolic blocks: the gap must be smaller.
    let mach_off = evaluate(&base, &suites.machine, &cfg_off)
        .unwrap()
        .pass_at(1);
    let mach_cot = evaluate(&base, &suites.machine, &cfg_cot)
        .unwrap()
        .pass_at(1);
    assert!(
        (sym_cot - sym_off) > (mach_cot - mach_off),
        "symbolic gap {:.1} should exceed machine gap {:.1}",
        sym_cot - sym_off,
        mach_cot - mach_off
    );
}
